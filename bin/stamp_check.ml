(* stamp_check: schedule exploration with the opacity oracle.

   Sweeps workloads (micro workloads and/or registered STAMP apps) across
   STM configurations and exploration strategies, checking every explored
   schedule with the opacity oracle.  Exit status 0 means every schedule
   passed — or, in fault-injection mode (--fault / --inject-bug), that
   the injected fault met its expectation: Contained faults must produce
   zero violations, Flagged faults must be detected by the oracle without
   any exception escaping a fiber. *)

module Config = Captured_stm.Config
module Fault = Captured_stm.Fault
module Strategy = Captured_check.Strategy
module Harness = Captured_check.Harness
module Oracle = Captured_check.Oracle
module Workloads = Captured_check.Workloads

let analysis_of_name = function
  | "baseline" -> Some Config.baseline
  | "tree" -> Some (Config.runtime Captured_core.Alloc_log.Tree)
  | "array" -> Some (Config.runtime Captured_core.Alloc_log.Array)
  | "filter" -> Some (Config.runtime Captured_core.Alloc_log.Filter)
  | _ -> None

let mode_of_name = function
  (* (fastpath, tvalidate, lazy_versioning) *)
  | "base" -> Some (false, false, false)
  | "fp" -> Some (true, false, false)
  | "tv" -> Some (false, true, false)
  | "fptv" -> Some (true, true, false)
  | "lazy" -> Some (false, false, true)
  | "fplazy" -> Some (true, false, true)
  | "tvlazy" -> Some (false, true, true)
  | "fptvlazy" -> Some (true, true, true)
  | _ -> None

let split_csv s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json (r : Harness.report) union =
  Printf.sprintf
    "{\"workload\":\"%s\",\"config\":\"%s\",\"strategy\":\"%s\",\"runs\":%d,\"new_schedules\":%d,\"union_distinct\":%d,\"truncated\":%d,\"crashes\":%d,\"dfrees\":%d,\"violations\":%d%s}"
    (json_escape r.Harness.workload)
    (json_escape r.Harness.config)
    r.Harness.strategy r.Harness.runs r.Harness.distinct union
    r.Harness.truncated r.Harness.crashes r.Harness.total_dfrees
    r.Harness.violations
    (match r.Harness.first with
    | None -> ""
    | Some f ->
        Printf.sprintf ",\"first\":\"%s\",\"minimized\":\"%s\""
          (json_escape (Oracle.violation_to_string f.Harness.violation))
          (json_escape (Strategy.interventions_to_string f.Harness.minimized)))

(* Crash matrix: every crash-point fault x a spread of STM modes, all
   durable, judged by the recovery oracle.  Zero violations means every
   simulated process death replayed to a prefix-consistent state. *)
let crash_matrix nthreads runs seed max_steps persist pct_depth json =
  let ( %> ) f g x = g (f x) in
  (* Crash faults draw from the *thread* PRNG (seeded by the world
     seed), so whether a given commit crashes is a property of the world
     seed, not the schedule.  Sweeping several world seeds per cell is
     what makes every crash point actually fire. *)
  let runs = if runs = 0 then 8 else runs in
  let world_seeds = List.init 5 (fun i -> seed + (31 * i)) in
  let faults =
    [
      Fault.Crash_pre_commit;
      Fault.Crash_mid_publish;
      Fault.Crash_post_publish;
      Fault.Crash_mid_checkpoint;
      Fault.Torn_wal_record;
    ]
  in
  let base = Config.runtime Captured_core.Alloc_log.Tree in
  let modes =
    [
      ("eager", fun c -> c);
      ("lazy", Config.with_lazy ~on:true);
      ("fptv",
       fun c ->
         c |> Config.with_fastpath ~on:true |> Config.with_tvalidate ~on:true);
      ("lazy+shards4",
       fun c -> c |> Config.with_lazy ~on:true |> Config.with_shards 4);
      (* +ebr legs: crash while deferred frees sit in limbo — recovery
         must apply exactly the durably-freed set (never materialize a
         still-limbo block as free, never leak a durably freed one). *)
      ("eager+ebr", Config.with_ebr ~on:true);
      ("lazy+shards4+ebr",
       Config.with_lazy ~on:true %> Config.with_shards 4
       %> Config.with_ebr ~on:true);
    ]
  in
  let workload_names = [ "counter"; "bank"; "publish" ] in
  let strategies =
    [ Strategy.Random { persist }; Strategy.Pct { depth = pct_depth } ]
  in
  let failures = ref 0
  and vacuous = ref 0
  and crashes = ref 0
  and total_runs = ref 0
  and cells = ref 0 in
  List.iter
    (fun fault ->
      List.iter
        (fun (_mname, modify) ->
          let config =
            base |> modify
            |> Config.with_fault (Some fault)
            |> Config.with_durable
          in
          (* The reclaim workload rides only in the [+ebr] cells: without
             EBR its frees race readers by design and the live oracle
             would (correctly) go red before recovery is even at issue. *)
          let workload_names =
            if config.Config.ebr then workload_names @ [ "free_race" ]
            else workload_names
          in
          List.iter
            (fun wname ->
              let w = Option.get (Workloads.find wname ~nthreads) in
              incr cells;
              let cell_runs = ref 0
              and cell_crashes = ref 0
              and cell_viol = ref 0
              and cell_distinct = ref 0
              and first = ref None in
              List.iter
                (fun strategy ->
                  List.iter
                    (fun wseed ->
                      let r =
                        Harness.explore ~workload:w ~config ~strategy ~runs
                          ~seed:wseed ~max_steps ()
                      in
                      cell_runs := !cell_runs + r.Harness.runs;
                      cell_crashes := !cell_crashes + r.Harness.crashes;
                      cell_viol := !cell_viol + r.Harness.violations;
                      cell_distinct := !cell_distinct + r.Harness.distinct;
                      if !first = None then first := r.Harness.first)
                    world_seeds)
                strategies;
              total_runs := !total_runs + !cell_runs;
              crashes := !crashes + !cell_crashes;
              if !cell_viol > 0 then incr failures;
              (* A cell whose fault never fired proved nothing. *)
              if !cell_crashes = 0 then incr vacuous;
              if json then
                Printf.printf
                  "{\"fault\":\"%s\",\"config\":\"%s\",\"workload\":\"%s\",\
                   \"runs\":%d,\"crashes\":%d,\"violations\":%d}\n"
                  (Fault.name fault) (Config.name config) w.Workloads.name
                  !cell_runs !cell_crashes !cell_viol
              else
                Printf.printf "%-24s %-34s %-14s runs=%-4d crashes=%-4d %s\n"
                  (Fault.name fault) (Config.name config) w.Workloads.name
                  !cell_runs !cell_crashes
                  (if !cell_viol = 0 then
                     if !cell_crashes = 0 then "VACUOUS (never fired)"
                     else "ok"
                   else
                     match !first with
                     | Some f ->
                         Printf.sprintf "VIOLATIONS=%d first=%s" !cell_viol
                           (Oracle.violation_to_string f.Harness.violation)
                     | None -> Printf.sprintf "VIOLATIONS=%d" !cell_viol))
            workload_names)
        modes)
    faults;
  if not json then
    Printf.printf
      "crash matrix: %d runs, %d injected crashes recovered over %d \
       fault*mode*workload cells\n"
      !total_runs !crashes !cells;
  if !failures > 0 then
    `Error
      ( false,
        Printf.sprintf
          "%d crash-matrix cells found recovery violations (see above)"
          !failures )
  else if !vacuous > 0 then
    `Error
      ( false,
        Printf.sprintf
          "%d crash-matrix cells never fired their crash fault (vacuous)"
          !vacuous )
  else `Ok ()

let sweep workloads_csv apps_csv nthreads analysis_name modes_csv shards_csv
    strategies_csv runs seed max_steps persist pct_depth dfs_preemptions
    min_distinct fault_name inject_bug wal wal_bug ebr_flag min_dfrees
    crash_matrix_flag json smoke =
  if crash_matrix_flag then
    crash_matrix nthreads runs seed max_steps persist pct_depth json
  else
  let runs = if smoke && runs = 0 then 600 else if runs = 0 then 400 else runs
  and min_distinct = if smoke && min_distinct = 0 then 1000 else min_distinct in
  match
    match (fault_name, inject_bug) with
    | "", false -> Ok None
    | "", true -> Ok (Some Fault.Skip_validation)
    | name, _ -> (
        match Fault.of_name name with
        | Some f -> Ok (Some f)
        | None ->
            Error
              (Printf.sprintf "unknown fault %S (known: %s)" name
                 (String.concat ", " Fault.names)))
  with
  | Error msg -> `Error (false, msg)
  | Ok fault ->
  (* premature-reuse only exists on the commit-time deferred-free path:
     the fault requires +ebr (it skips the grace period EBR imposes) and
     a workload that actually frees across threads. *)
  let ebr = ebr_flag || fault = Some Fault.Premature_reuse in
  (* The zombie workload's spin is bounded only by correct validation —
     the one thing the injected faults deliberately break — so fault
     sweeps leave it out of the default set. *)
  let workload_names =
    if workloads_csv = "" && apps_csv = "" then
      if fault = Some Fault.Premature_reuse then [ "free_race" ]
      else
        [ "counter"; "bank"; "publish"; "scoped" ]
        @ (if fault = None then [ "zombie" ] else [])
    else split_csv workloads_csv
  in
  let resolve name =
    match Workloads.find name ~nthreads with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "unknown workload %S" name)
  in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match resolve n with
        | Ok w -> resolve_all (w :: acc) rest
        | Error _ as e -> e)
  in
  match resolve_all [] (workload_names @ split_csv apps_csv) with
  | Error msg -> `Error (false, msg)
  | Ok workloads -> (
      match analysis_of_name analysis_name with
      | None ->
          `Error
            (false, Printf.sprintf "unknown analysis %S" analysis_name)
      | Some base -> (
          let modes =
            List.filter_map
              (fun m ->
                match mode_of_name m with
                | Some fptv -> Some (m, fptv)
                | None -> None)
            @@ split_csv modes_csv
          in
          let strategies =
            List.filter_map
              (fun s ->
                match s with
                | "random" -> Some (Strategy.Random { persist })
                | "pct" -> Some (Strategy.Pct { depth = pct_depth })
                | "dfs" -> Some (Strategy.Dfs { preemptions = dfs_preemptions })
                | _ -> None)
            @@ split_csv strategies_csv
          in
          let shard_counts =
            List.filter_map
              (fun s ->
                match int_of_string_opt s with
                | Some n when n >= 1 && n land (n - 1) = 0 -> Some n
                | _ -> None)
              (split_csv shards_csv)
          in
          if modes = [] then `Error (false, "no valid modes")
          else if strategies = [] then `Error (false, "no valid strategies")
          else if shard_counts = [] then
            `Error (false, "no valid shard counts (powers of two >= 1)")
          else begin
            let failures = ref 0
            and caught = ref 0
            and crashed = ref 0
            and vacuous = ref 0
            and hung = ref 0
            and total_runs = ref 0
            and total_distinct = ref 0
            and shallow = ref [] in
            List.iter
              (fun w ->
                List.iter
                  (fun ((_mname, (fp, tv, lz)), shards) ->
                    let durable =
                      wal || wal_bug
                      || match fault with
                         | Some f -> Fault.is_crash f
                         | None -> false
                    in
                    let config =
                      base
                      |> Config.with_fastpath ~on:fp
                      |> Config.with_tvalidate ~on:tv
                      |> Config.with_lazy ~on:lz
                      |> Config.with_shards shards
                      |> Config.with_fault fault
                      |> Config.with_durable ~on:durable
                      |> Config.with_ebr ~on:ebr
                    in
                    let seen = Hashtbl.create (8 * runs) in
                    let cell_dfrees = ref 0 in
                    (* Crash-point faults (and the seeded recovery bug)
                       draw from the thread PRNG: whether a commit
                       crashes depends on the world seed, not the
                       schedule, so those sweeps spread their run budget
                       over several world seeds. *)
                    let world_seeds, runs_per_seed =
                      if durable then
                        (List.init 5 (fun i -> seed + (31 * i)),
                         max 1 (runs / 5))
                      else ([ seed ], runs)
                    in
                    List.iter
                      (fun strategy ->
                      List.iter
                        (fun wseed ->
                        let r =
                          Harness.explore ~workload:w ~config ~strategy
                            ~runs:runs_per_seed ~seed:wseed ~max_steps
                            ~wal_bug ~seen ()
                        in
                        total_runs := !total_runs + r.Harness.runs;
                        cell_dfrees := !cell_dfrees + r.Harness.total_dfrees;
                        (match r.Harness.first with
                        | Some f
                          when f.Harness.violation.Oracle.kind
                               = "fiber-exception" ->
                            incr crashed
                        | _ -> ());
                        if r.Harness.truncated > 0 then begin
                          incr hung;
                          if not json then
                            Printf.printf
                              "FAIL %s %s %s: %d truncated runs (possible \
                               livelock; raise --max-steps if legitimate)\n"
                              w.Workloads.name (Config.name config)
                              r.Harness.strategy r.Harness.truncated
                        end;
                        if r.Harness.violations > 0 then begin
                          if fault <> None then begin
                            incr caught;
                            match r.Harness.first with
                            | Some f ->
                                shallow :=
                                  (w.Workloads.name,
                                   List.length f.Harness.minimized)
                                  :: !shallow
                            | None -> ()
                          end
                          else incr failures
                        end;
                        if json then
                          print_endline (report_json r (Hashtbl.length seen))
                        else print_endline (Harness.report_to_string r))
                        world_seeds)
                      strategies;
                    let union = Hashtbl.length seen in
                    total_distinct := !total_distinct + union;
                    (* Vacuity floor: a reclaim cell that never executed
                       a deferred free proved nothing about reuse. *)
                    if !cell_dfrees < min_dfrees then begin
                      incr vacuous;
                      if not json then
                        Printf.printf
                          "FAIL %s %s: %d deferred frees < %d required \
                           (vacuous reclaim cell)\n"
                          w.Workloads.name (Config.name config) !cell_dfrees
                          min_dfrees
                    end;
                    if fault = None && union < min_distinct then begin
                      incr failures;
                      if not json then
                        Printf.printf
                          "FAIL %s %s: %d distinct schedules < %d required\n"
                          w.Workloads.name (Config.name config) union
                          min_distinct
                    end)
                  (List.concat_map
                     (fun m -> List.map (fun s -> (m, s)) shard_counts)
                     modes))
              workloads;
            if not json then
              Printf.printf
                "total: %d runs, %d distinct schedules across %d workload×config cells\n"
                !total_runs !total_distinct
                (List.length workloads * List.length modes
                * List.length shard_counts);
            if !hung > 0 then
              `Error
                ( false,
                  Printf.sprintf
                    "%d cells truncated runs (possible livelock)" !hung )
            else if !vacuous > 0 then
              `Error
                ( false,
                  Printf.sprintf
                    "%d cells below the --min-dfrees floor (vacuous)"
                    !vacuous )
            else
              match fault with
              | Some f -> (
                  let fname = Fault.name f in
                  match
                    if wal_bug then Fault.Flagged else Fault.expectation f
                  with
                  | Fault.Contained ->
                      if !caught > 0 then
                        `Error
                          ( false,
                            Printf.sprintf
                              "fault %s escaped containment: violations in \
                               %d strategy runs"
                              fname !caught )
                      else `Ok ()
                  | Fault.Flagged ->
                      if !crashed > 0 then
                        `Error
                          ( false,
                            Printf.sprintf
                              "fault %s: exceptions escaped fibers in %d \
                               runs (sandbox failed)"
                              fname !crashed )
                      else if !caught = 0 then
                        `Error
                          ( false,
                            Printf.sprintf
                              "injected fault %s was NOT flagged by any \
                               strategy"
                              fname )
                      else begin
                        if not json then
                          List.iter
                            (fun (w, n) ->
                              Printf.printf
                                "flagged injected fault on %s (minimized to \
                                 %d interventions)\n"
                                w n)
                            !shallow;
                        `Ok ()
                      end)
              | None ->
                  if !failures > 0 then
                    `Error
                      ( false,
                        Printf.sprintf "%d failing cells (see above)"
                          !failures )
                  else `Ok ()
          end))

open Cmdliner

let workloads_arg =
  let doc =
    "Comma-separated micro workloads (counter, bank, publish, scoped, \
     zombie, free_race, privatize_race).  Default: the first five — \
     fault sweeps drop zombie, whose termination depends on the \
     validation machinery faults break (unless $(b,--apps) is given \
     alone); the reclaim pair is red by design without $(b,--ebr) and \
     must be named explicitly."
  in
  Arg.(value & opt string "" & info [ "workloads"; "w" ] ~docv:"NAMES" ~doc)

let apps_arg =
  let doc = "Comma-separated registered STAMP apps to sweep (Test scale)." in
  Arg.(value & opt string "" & info [ "apps" ] ~docv:"NAMES" ~doc)

let threads_arg =
  let doc = "Simulated threads per workload." in
  Arg.(value & opt int 2 & info [ "threads"; "t" ] ~docv:"N" ~doc)

let analysis_arg =
  let doc = "Base analysis: baseline, tree, array or filter." in
  Arg.(value & opt string "tree" & info [ "analysis" ] ~docv:"NAME" ~doc)

let modes_arg =
  let doc =
    "STM mode combinations to sweep: base, fp (+fastpath), tv (+timestamp \
     validation), fptv (both), plus lazy-versioning variants lazy, \
     fplazy, tvlazy, fptvlazy (deferred-update redo buffer)."
  in
  Arg.(
    value & opt string "base,fp,tv,fptv" & info [ "modes" ] ~docv:"NAMES" ~doc)

let shards_arg =
  let doc =
    "Comma-separated orec shard counts (powers of two) multiplying the \
     mode grid; counts > 1 switch +tv cells to the decentralized clock."
  in
  Arg.(value & opt string "1" & info [ "shards" ] ~docv:"NS" ~doc)

let strategies_arg =
  let doc = "Exploration strategies: random, pct, dfs." in
  Arg.(
    value
    & opt string "random,pct,dfs"
    & info [ "strategies"; "s" ] ~docv:"NAMES" ~doc)

let runs_arg =
  let doc = "Schedules per strategy per workload×config (0 = default 400)." in
  Arg.(value & opt int 0 & info [ "runs"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Base PRNG seed (the sweep is deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let max_steps_arg =
  let doc = "Scheduler decision budget per run before truncation." in
  Arg.(value & opt int 200_000 & info [ "max-steps" ] ~docv:"N" ~doc)

let persist_arg =
  let doc = "Random walk: percent chance to keep running at consume points." in
  Arg.(value & opt int 85 & info [ "persist" ] ~docv:"PCT" ~doc)

let pct_depth_arg =
  let doc = "PCT bug depth d (d - 1 priority-change points)." in
  Arg.(value & opt int 3 & info [ "pct-depth" ] ~docv:"N" ~doc)

let dfs_preemptions_arg =
  let doc = "DFS preemption bound." in
  Arg.(value & opt int 2 & info [ "dfs-preemptions" ] ~docv:"N" ~doc)

let min_distinct_arg =
  let doc =
    "Fail unless every workload×config cell explores at least N distinct \
     schedules across its strategies (0 = no floor)."
  in
  Arg.(value & opt int 0 & info [ "min-distinct" ] ~docv:"N" ~doc)

let fault_arg =
  let doc =
    "Inject a structured fault (skip-validation, stale-read, \
     delayed-unlock, spurious-abort, alloc-log-drop, clock-stall, \
     stale-epoch, redo-drop, publish-partial, premature-reuse) and \
     judge the sweep by the fault's expectation: $(i,contained) faults \
     must produce zero violations, $(i,flagged) faults must be detected \
     by the oracle with no exception escaping a fiber."
  in
  Arg.(value & opt string "" & info [ "fault" ] ~docv:"NAME" ~doc)

let inject_bug_arg =
  let doc =
    "Canary mode: shorthand for $(b,--fault skip-validation) — succeed \
     only if the oracle catches the validation-skipping bug."
  in
  Arg.(value & flag & info [ "inject-bug" ] ~doc)

let wal_arg =
  let doc =
    "Run every cell with durable transactions (+wal): each run mirrors \
     commits to an in-memory log device, and clean runs additionally get \
     a full crash-free replay checked by the recovery oracle — proving \
     +wal sweeps stay silent."
  in
  Arg.(value & flag & info [ "wal" ] ~doc)

let wal_bug_arg =
  let doc =
    "Checker self-test: seed a recovery bug (replay the torn tail record \
     as if it were whole) and require the recovery oracle to flag it.  \
     Pair with $(b,--fault torn-wal-record)."
  in
  Arg.(value & flag & info [ "wal-bug-torn" ] ~doc)

let ebr_arg =
  let doc =
    "Run every cell with epoch-based reclamation (+ebr): deferred frees \
     park in per-thread limbo lists for two grace periods before the \
     allocator may reuse them, and the oracle's use-after-free rule is \
     armed.  Implied by $(b,--fault premature-reuse)."
  in
  Arg.(value & flag & info [ "ebr" ] ~doc)

let min_dfrees_arg =
  let doc =
    "Fail any workload×config cell whose runs executed fewer than N \
     deferred frees in total — the reclaim sweeps' vacuity floor (a \
     cell that never freed proves nothing about reuse safety)."
  in
  Arg.(value & opt int 0 & info [ "min-dfrees" ] ~docv:"N" ~doc)

let crash_matrix_arg =
  let doc =
    "Sweep every crash-point fault (crash-pre-commit, crash-mid-publish, \
     crash-post-publish, crash-mid-checkpoint, torn-wal-record) across \
     eager, lazy, fptv, lazy+shards:4 and the +ebr pair of durable \
     configurations (the +ebr cells add the free_race workload, so \
     crashes land while frees sit in limbo); every simulated death must \
     recover to a prefix-consistent state (zero violations)."
  in
  Arg.(value & flag & info [ "crash-matrix" ] ~doc)

let json_arg =
  let doc = "Emit one JSON object per report line." in
  Arg.(value & flag & info [ "json" ] ~doc)

let smoke_arg =
  let doc =
    "Smoke preset: defaults $(b,--min-distinct) to 1000 (CI acceptance \
     floor)."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let cmd =
  let doc = "systematic concurrency testing for the STM" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Explores thread interleavings of small transactional workloads \
         under a controlled scheduler and checks every run against an \
         opacity oracle (snapshot consistency, lost updates, read \
         coherence, final state, workload invariants).  Any violation is \
         minimized with delta debugging to a short intervention list that \
         replays deterministically.";
      `S Manpage.s_examples;
      `P "Full smoke sweep (what CI runs):";
      `Pre "  stamp_check --smoke --seed 1";
      `P "Check the checker catches an injected lost-update bug:";
      `Pre "  stamp_check --inject-bug -w counter -s random,dfs";
      `P "Sweep one structured fault (what the CI fault matrix runs):";
      `Pre "  stamp_check --fault stale-read --seed 1";
      `P "Sweep a STAMP app:";
      `Pre "  stamp_check --apps vacation-low -n 100 --min-distinct 0";
      `P "Crash matrix — every crash point must recover cleanly:";
      `Pre "  stamp_check --crash-matrix --seed 1";
      `P "Recovery-oracle self-test — a seeded replay bug must be flagged:";
      `Pre "  stamp_check --fault torn-wal-record --wal-bug-torn -w bank";
      `P "Reclaim sweep — use-after-free rule armed, reuse gated on epochs:";
      `Pre
        "  stamp_check -w free_race,privatize_race --ebr -s random,pct \
         --min-dfrees 1";
      `P "Premature-reuse fault — the oracle must flag the skipped grace:";
      `Pre "  stamp_check --fault premature-reuse";
    ]
  in
  Cmd.v
    (Cmd.info "stamp_check" ~doc ~man)
    Term.(
      ret
        (const sweep $ workloads_arg $ apps_arg $ threads_arg $ analysis_arg
       $ modes_arg $ shards_arg $ strategies_arg $ runs_arg $ seed_arg $ max_steps_arg
       $ persist_arg $ pct_depth_arg $ dfs_preemptions_arg $ min_distinct_arg
       $ fault_arg $ inject_bug_arg $ wal_arg $ wal_bug_arg $ ebr_arg
       $ min_dfrees_arg $ crash_matrix_arg $ json_arg $ smoke_arg))

let () = exit (Cmd.eval cmd)
