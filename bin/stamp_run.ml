(* CLI front end: run any STAMP workload under any capture-analysis
   configuration, on the deterministic simulator or native domains, and
   print the full statistics.

   Examples:
     stamp_run list
     stamp_run run vacation-high --config tree --threads 16
     stamp_run run yada --config compiler --scale large --native
     stamp_run analyze bayes *)

module Config = Captured_stm.Config
module Cm = Captured_stm.Cm
module Fault = Captured_stm.Fault
module Wal = Captured_stm.Wal
module Engine = Captured_stm.Engine
module Stats = Captured_stm.Stats
module Alloc_log = Captured_core.Alloc_log
module App = Captured_apps.App
module Registry = Captured_apps.Registry
open Cmdliner

let config_of_name ~scope = function
  | "baseline" -> Ok Config.baseline
  | "tree" -> Ok (Config.runtime ~scope Alloc_log.Tree)
  | "array" -> Ok (Config.runtime ~scope Alloc_log.Array)
  | "filter" | "filtering" -> Ok (Config.runtime ~scope Alloc_log.Filter)
  | "hybrid" -> Ok (Config.runtime_hybrid ~scope Alloc_log.Tree)
  | "compiler" -> Ok Config.compiler
  | "audit" -> Ok Config.audit
  | other -> Error (Printf.sprintf "unknown config %s" other)

let scope_of_name = function
  | "full" -> Ok Config.full_scope
  | "write" -> Ok Config.write_only_scope
  | "heap-write" -> Ok Config.heap_write_only_scope
  | other -> Error (Printf.sprintf "unknown scope %s" other)

let scale_of_name = function
  | "test" -> Ok App.Test
  | "bench" -> Ok App.Bench
  | "large" -> Ok App.Large
  | other -> Error (Printf.sprintf "unknown scale %s" other)

let int_array_json a =
  "["
  ^ String.concat "," (List.map string_of_int (Array.to_list a))
  ^ "]"

(* Top conflicting (shard, tid, peer) pairs, capped so a pathological run
   cannot flood the JSON line. *)
let pairs_json s =
  let top =
    List.filteri (fun i _ -> i < 8) (Stats.pairs s)
  in
  "["
  ^ String.concat ","
      (List.map
         (fun (shard, tid, peer, n) ->
           Printf.sprintf
             "{\"shard\":%d,\"tid\":%d,\"peer\":%d,\"count\":%d}" shard tid
             peer n)
         top)
  ^ "]"

let print_json ~app ~config ~mode ~threads (r : Engine.result) ~native =
  let s = r.Engine.stats in
  Printf.printf
    "{\"app\":\"%s\",\"config\":\"%s\",\"threads\":%d,\"backend\":\"%s\",\
     \"mode\":\"%s\",\
     \"commits\":%d,\"aborts\":%d,\"user_aborts\":%d,\"reads\":%d,\
     \"writes\":%d,\"reads_elided_stack\":%d,\"reads_elided_heap\":%d,\
     \"reads_elided_private\":%d,\"reads_elided_static\":%d,\
     \"writes_elided_stack\":%d,\"writes_elided_heap\":%d,\
     \"writes_elided_private\":%d,\"writes_elided_static\":%d,\
     \"waw_hits\":%d,\"undo_entries\":%d,\"lock_waits\":%d,\
     \"tx_allocs\":%d,\"tx_frees\":%d,\"summary_rejects\":%d,\
     \"mru_hits\":%d,\"backend_probes\":%d,\"promotions\":%d,\
     \"overflows\":%d,\"capture_check_cycles\":%d,\"validations\":%d,\
     \"validations_skipped\":%d,\"snapshot_extensions\":%d,\
     \"readonly_fast_commits\":%d,\"clock_advances\":%d,\
     \"clock_cas\":%d,\"clock_resyncs\":%d,\
     \"redo_inserts\":%d,\"redo_hits\":%d,\"redo_skips\":%d,\
     \"publish_cycles\":%d,\
     \"validation_cycles\":%d,\"spin_aborts\":%d,\"backoff_cycles\":%d,\
     \"fuel_exhaustions\":%d,\"sandbox_aborts\":%d,\"sandbox_bounds\":%d,\
     \"faults_injected\":%d,\"cm_max_consec_aborts\":%d,\
     \"cm_starvation_events\":%d,\"shard_acquires\":%s,\
     \"shard_conflicts\":%s,\"top_conflict_pairs\":%s,\
     \"wal_records\":%d,\"wal_bytes\":%d,\"wal_fsyncs\":%d,\
     \"wal_skips\":%d,\"limbo_blocks\":%d,\"limbo_words\":%d,\
     \"epoch_advances\":%d,\"reclaim_stalls\":%d,\"grace_waits\":%d,\
     \"makespan\":%d,\
     \"wall_ms\":%.3f,\"per_thread_wall_ms\":[%s]}\n"
    app config threads
    (if native then "native" else "sim")
    mode
    s.Stats.commits s.Stats.aborts s.Stats.user_aborts s.Stats.reads
    s.Stats.writes s.Stats.reads_elided_stack s.Stats.reads_elided_heap
    s.Stats.reads_elided_private s.Stats.reads_elided_static
    s.Stats.writes_elided_stack s.Stats.writes_elided_heap
    s.Stats.writes_elided_private s.Stats.writes_elided_static
    s.Stats.waw_hits s.Stats.undo_entries s.Stats.lock_waits s.Stats.tx_allocs
    s.Stats.tx_frees s.Stats.capture_summary_rejects s.Stats.capture_mru_hits
    s.Stats.capture_backend_probes s.Stats.capture_promotions
    s.Stats.capture_log_overflows s.Stats.capture_check_cycles
    s.Stats.validations s.Stats.validations_skipped
    s.Stats.snapshot_extensions s.Stats.readonly_fast_commits
    s.Stats.clock_advances s.Stats.clock_cas s.Stats.clock_resyncs
    s.Stats.redo_inserts s.Stats.redo_hits s.Stats.redo_skips
    s.Stats.publish_cycles
    s.Stats.validation_cycles s.Stats.spin_aborts
    s.Stats.backoff_cycles s.Stats.fuel_exhaustions s.Stats.sandbox_aborts
    s.Stats.sandbox_bounds s.Stats.faults_injected
    s.Stats.cm_max_consec_aborts s.Stats.cm_starvation_events
    (int_array_json s.Stats.shard_acquires)
    (int_array_json s.Stats.shard_conflicts)
    (pairs_json s) s.Stats.wal_records s.Stats.wal_bytes s.Stats.wal_fsyncs
    s.Stats.wal_skips s.Stats.limbo_blocks s.Stats.limbo_words
    s.Stats.epoch_advances s.Stats.reclaim_stalls s.Stats.grace_waits
    r.Engine.makespan
    (1000. *. r.Engine.wall)
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun tw -> Printf.sprintf "%.3f" (1000. *. tw))
             r.Engine.per_thread_wall)))

let print_result (r : Engine.result) ~native =
  let s = r.Engine.stats in
  Printf.printf "commits:            %d\n" s.Stats.commits;
  Printf.printf "aborts:             %d (ratio %.3f)\n" s.Stats.aborts
    (Stats.abort_ratio s);
  Printf.printf "user aborts:        %d\n" s.Stats.user_aborts;
  Printf.printf "reads:              %d\n" s.Stats.reads;
  Printf.printf "  elided (stack):   %d\n" s.Stats.reads_elided_stack;
  Printf.printf "  elided (heap):    %d\n" s.Stats.reads_elided_heap;
  Printf.printf "  elided (private): %d\n" s.Stats.reads_elided_private;
  Printf.printf "  elided (static):  %d\n" s.Stats.reads_elided_static;
  Printf.printf "writes:             %d\n" s.Stats.writes;
  Printf.printf "  elided (stack):   %d\n" s.Stats.writes_elided_stack;
  Printf.printf "  elided (heap):    %d\n" s.Stats.writes_elided_heap;
  Printf.printf "  elided (private): %d\n" s.Stats.writes_elided_private;
  Printf.printf "  elided (static):  %d\n" s.Stats.writes_elided_static;
  Printf.printf "waw filter hits:    %d\n" s.Stats.waw_hits;
  Printf.printf "undo log entries:   %d\n" s.Stats.undo_entries;
  Printf.printf "lock waits:         %d\n" s.Stats.lock_waits;
  Printf.printf "tx allocs / frees:  %d / %d\n" s.Stats.tx_allocs s.Stats.tx_frees;
  Printf.printf "capture fast path:  summary-reject %d / mru-hit %d / \
                 backend-probe %d\n"
    s.Stats.capture_summary_rejects s.Stats.capture_mru_hits
    s.Stats.capture_backend_probes;
  Printf.printf "  promotions:       %d\n" s.Stats.capture_promotions;
  Printf.printf "  array overflows:  %d\n" s.Stats.capture_log_overflows;
  Printf.printf "  check cycles:     %d\n" s.Stats.capture_check_cycles;
  Printf.printf "validation:         full-scans %d / skipped %d / \
                 extensions %d\n"
    s.Stats.validations s.Stats.validations_skipped
    s.Stats.snapshot_extensions;
  Printf.printf "  ro fast commits:  %d\n" s.Stats.readonly_fast_commits;
  Printf.printf "  clock advances:   %d\n" s.Stats.clock_advances;
  Printf.printf "  clock CASes:      %d (resyncs %d)\n" s.Stats.clock_cas
    s.Stats.clock_resyncs;
  Printf.printf "  cycles:           %d\n" s.Stats.validation_cycles;
  if s.Stats.redo_inserts + s.Stats.redo_hits + s.Stats.redo_skips > 0 then begin
    Printf.printf "redo buffer:        inserts %d / read-hits %d / \
                   captured-skips %d\n"
      s.Stats.redo_inserts s.Stats.redo_hits s.Stats.redo_skips;
    Printf.printf "  publish cycles:   %d\n" s.Stats.publish_cycles
  end;
  if Array.length s.Stats.shard_conflicts > 1 then begin
    Printf.printf "shard locality:     acquires [%s] / conflicts [%s]\n"
      (String.concat " "
         (List.map string_of_int (Array.to_list s.Stats.shard_acquires)))
      (String.concat " "
         (List.map string_of_int (Array.to_list s.Stats.shard_conflicts)));
    match Stats.pairs s with
    | [] -> ()
    | (shard, tid, peer, n) :: _ ->
        Printf.printf "  hottest pair:     shard %d, t%d vs t%d (%d waits)\n"
          shard tid peer n
  end;
  Printf.printf "contention:         spin-aborts %d / backoff-cycles %d / \
                 max-consec-aborts %d\n"
    s.Stats.spin_aborts s.Stats.backoff_cycles s.Stats.cm_max_consec_aborts;
  Printf.printf "  starvation:       %d\n" s.Stats.cm_starvation_events;
  Printf.printf "sandbox:            fuel-exhaustions %d / aborts %d / \
                 bounds %d\n"
    s.Stats.fuel_exhaustions s.Stats.sandbox_aborts s.Stats.sandbox_bounds;
  if s.Stats.faults_injected > 0 then
    Printf.printf "faults injected:    %d\n" s.Stats.faults_injected;
  if s.Stats.wal_records + s.Stats.wal_skips > 0 then
    Printf.printf "wal:                records %d / bytes %d / fsyncs %d / \
                   captured-skips %d\n"
      s.Stats.wal_records s.Stats.wal_bytes s.Stats.wal_fsyncs
      s.Stats.wal_skips;
  if
    s.Stats.epoch_advances + s.Stats.limbo_blocks + s.Stats.reclaim_stalls
    + s.Stats.grace_waits
    > 0
  then begin
    Printf.printf "reclaim:            epoch-advances %d / stalls %d / \
                   grace-waits %d\n"
      s.Stats.epoch_advances s.Stats.reclaim_stalls s.Stats.grace_waits;
    Printf.printf "  limbo high-water: %d blocks / %d words\n"
      s.Stats.limbo_blocks s.Stats.limbo_words
  end;
  if native then begin
    Printf.printf "wall time:          %.3f ms\n" (1000. *. r.Engine.wall);
    Printf.printf "native makespan:    %.3f ms (slowest domain)\n"
      (float_of_int r.Engine.makespan /. 1e6);
    Array.iteri
      (fun tid tw ->
        Printf.printf "  domain %-2d wall:   %.3f ms (%d commits)\n" tid
          (1000. *. tw)
          r.Engine.per_thread.(tid).Stats.commits)
      r.Engine.per_thread_wall
  end
  else Printf.printf "virtual makespan:   %d cycles\n" r.Engine.makespan

let cm_of_name name =
  match Cm.policy_of_name name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown contention-management policy %s (known: %s)"
           name
           (String.concat " " (List.map Cm.policy_name Cm.all_policies)))

let fault_of_name = function
  | "" -> Ok None
  | name -> (
      match Fault.of_name name with
      | Some f -> Ok (Some f)
      | None ->
          Error
            (Printf.sprintf "unknown fault %s (known: %s)" name
               (String.concat " " Fault.names)))

let orec_map_of_name = function
  | "hash" -> Ok Captured_stm.Orec.Hash
  | "affinity" -> Ok Captured_stm.Orec.Affinity
  | other -> Error (Printf.sprintf "unknown orec map %s" other)

let print_recovery ~json dir (rc : Wal.recovery) =
  if json then
    Printf.printf
      "{\"recovered\":\"%s\",\"floor_seq\":%d,\"floor_raws\":%d,\
       \"commits_replayed\":%d,\"raws_replayed\":%d,\"records\":%d,\
       \"torn\":%b,\"corrupt\":%b,\"frees_replayed\":%d,\
       \"recovery_ms\":%.3f}\n"
      dir rc.Wal.r_floor_seq rc.Wal.r_floor_raws
      (List.length rc.Wal.r_applied_seqs)
      rc.Wal.r_raws_applied rc.Wal.r_records rc.Wal.r_torn rc.Wal.r_corrupt
      (List.length rc.Wal.r_freed) rc.Wal.r_wall_ms
  else begin
    Printf.printf "recovered from:     %s\n" dir;
    Printf.printf "checkpoint floor:   commit seq %d, %d raw stores\n"
      rc.Wal.r_floor_seq rc.Wal.r_floor_raws;
    Printf.printf "replayed:           %d commits / %d raw stores / %d frees\n"
      (List.length rc.Wal.r_applied_seqs)
      rc.Wal.r_raws_applied
      (List.length rc.Wal.r_freed);
    Printf.printf "records scanned:    %d%s%s\n" rc.Wal.r_records
      (if rc.Wal.r_torn then " (torn tail dropped)" else "")
      (if rc.Wal.r_corrupt then " (CORRUPT tail dropped)" else "");
    Printf.printf "recovery wall:      %.3f ms\n" rc.Wal.r_wall_ms
  end

let run_cmd app_name config_name scope_name scale_name threads native seed
    pessimistic fastpath tvalidate lazy_ fences ebr shards orec_map_name
    cm_name fuel fault_name wal_dir wal_group recover json =
  let ( let* ) = Result.bind in
  let outcome =
    let* scope = scope_of_name scope_name in
    let* config = config_of_name ~scope config_name in
    let config = if pessimistic then Config.pessimistic config else config in
    let config = if fastpath then Config.with_fastpath config else config in
    let config = if tvalidate then Config.with_tvalidate config else config in
    let config = if lazy_ then Config.with_lazy config else config in
    let config = if fences then Config.with_fences config else config in
    let config = if ebr then Config.with_ebr config else config in
    let* orec_map = orec_map_of_name orec_map_name in
    let* config =
      if shards < 1 || shards land (shards - 1) <> 0 then
        Error "--shards must be a power of two >= 1"
      else Ok (Config.with_shards ~map:orec_map shards config)
    in
    let* cm = cm_of_name cm_name in
    let config = Config.with_cm cm config in
    let* config =
      if fuel < 0 then Error "negative --fuel"
      else Ok (Config.with_fuel fuel config)
    in
    let* fault = fault_of_name fault_name in
    let config = Config.with_fault fault config in
    let* config =
      if wal_dir = "" then Ok config
      else if wal_group < 1 then Error "--wal-group must be >= 1"
      else Ok (Config.with_durable ~group:wal_group config)
    in
    let* () =
      match fault with
      | Some f when Fault.is_crash f && native ->
          Error
            (Printf.sprintf
               "fault %s is a simulated crash-point; it needs the \
                deterministic simulator (drop --native)"
               (Fault.name f))
      | Some f when Fault.is_crash f && wal_dir = "" ->
          Error
            (Printf.sprintf "fault %s needs a durable log: pass --wal DIR"
               (Fault.name f))
      | _ -> Ok ()
    in
    let* scale = scale_of_name scale_name in
    match Registry.find app_name with
    | None ->
        Error
          (Printf.sprintf "unknown app %s (try: %s)" app_name
             (String.concat " " (Registry.names ())))
    | Some app ->
        if not json then
          Printf.printf "%s [%s, %d threads, %s, %s]\n\n" app.App.name
            (Config.name config) threads scale_name
            (if native then "native domains" else "simulator");
        let mode = if native then `Native else `Sim seed in
        let wal_dir_opt = if wal_dir = "" then None else Some wal_dir in
        let after_run () =
          if recover && wal_dir <> "" then
            let* rc =
              Result.map_error (fun m -> "recovery: " ^ m)
                (Wal.recover_dir wal_dir)
            in
            Ok (print_recovery ~json wal_dir rc)
          else Ok ()
        in
        let run_outcome =
          try
            `Done
              (App.run_checked ?wal_dir:wal_dir_opt app ~nthreads:threads
                 ~scale ~mode config)
          with Captured_sim.Sched.Fiber_failure (tid, Wal.Crashed) ->
            `Crashed tid
        in
        (match run_outcome with
        | `Done result ->
            let* result = result in
            if json then
              print_json ~app:app.App.name ~config:(Config.name config)
                ~mode:(Config.mode_name config) ~threads result ~native
            else begin
              print_result result ~native;
              Printf.printf "\nverification: OK\n"
            end;
            after_run ()
        | `Crashed tid ->
            (* Injected crash-point fired: the durable prefix mirrored to
               --wal DIR is all that survives, exactly like a real
               process death. *)
            if not json then
              Printf.printf
                "simulated crash on thread %d (%s); durable log left in \
                 %s\n"
                tid fault_name wal_dir
            else if not recover then
              Printf.printf
                "{\"app\":\"%s\",\"crashed\":true,\"fault\":\"%s\",\
                 \"tid\":%d,\"wal\":\"%s\"}\n"
                app.App.name fault_name tid wal_dir;
            after_run ())
  in
  match outcome with
  | Ok () -> `Ok ()
  | Error m -> `Error (false, m)

let recover_cmd wal_dir json =
  match Wal.recover_dir wal_dir with
  | Error m -> `Error (false, "recovery: " ^ m)
  | Ok rc ->
      print_recovery ~json wal_dir rc;
      `Ok ()

let list_cmd () =
  List.iter
    (fun app -> Printf.printf "%-14s %s\n" app.App.name app.App.description)
    Registry.all;
  `Ok ()

let analyze_cmd app_name =
  match Registry.find app_name with
  | None -> `Error (false, "unknown app " ^ app_name)
  | Some app ->
      let analysis =
        Captured_tmir.Capture_analysis.analyze (Lazy.force app.App.model)
      in
      Format.printf "%a@." Captured_tmir.Capture_analysis.pp analysis;
      `Ok ()

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Workload name (see `stamp_run list`).")

let config_arg =
  Arg.(value & opt string "baseline"
       & info [ "config"; "c" ] ~docv:"CONFIG"
           ~doc:"baseline | tree | array | filter | hybrid | compiler | audit")

let scope_arg =
  Arg.(value & opt string "full"
       & info [ "scope" ] ~docv:"SCOPE"
           ~doc:"Runtime-check scope: full | write | heap-write")

let scale_arg =
  Arg.(value & opt string "bench"
       & info [ "scale"; "s" ] ~docv:"SCALE" ~doc:"test | bench | large")

let threads_arg =
  Arg.(value & opt int 16 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Logical threads.")

let native_arg =
  Arg.(value & flag
       & info [ "native" ]
           ~doc:"Run on real domains (wall-clock) instead of the simulator.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulator seed.")

let pessimistic_arg =
  Arg.(value & flag
       & info [ "pessimistic" ] ~doc:"Lock records for reads (2PL).")

let fastpath_arg =
  Arg.(value & flag
       & info [ "fastpath" ]
           ~doc:"Hierarchical capture-check fast path (bounds summary, MRU \
                 block cache, adaptive array-to-tree promotion).")

let tvalidate_arg =
  Arg.(value & flag
       & info [ "tvalidate" ]
           ~doc:"Timestamp-based validation (global version clock, O(1) \
                 snapshot checks, snapshot extension, read-only commit \
                 fast path).")

let lazy_arg =
  Arg.(value & flag
       & info [ "lazy" ]
           ~doc:"Lazy versioning (deferred update): write barriers buffer \
                 values in a per-transaction redo table instead of \
                 acquiring ownership records; commit acquires the write \
                 set, validates, publishes and releases.  Captured writes \
                 bypass the buffer entirely (redo_skips).")

let fences_arg =
  Arg.(value & flag
       & info [ "fences" ]
           ~doc:"Debug: full memory fence between the read barrier's data \
                 load and its confirming orec load.  The STM is argued \
                 correct without it (DESIGN.md, memory-model section); \
                 use to separate ordering bugs from logic bugs on native \
                 runs.")

let ebr_arg =
  Arg.(value & flag
       & info [ "ebr" ]
           ~doc:"Epoch-based reclamation (+ebr): committed transactional \
                 frees park in a per-thread limbo list and return to the \
                 allocator only after two grace periods, so no concurrent \
                 attempt can read a recarved block.  Adds the limbo / \
                 epoch-advance / reclaim-stall counters to the report.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the orec table into N (power of two) padded \
                 sub-tables; N > 1 also switches +tvalidate to the \
                 decentralized version clock (no clock CAS on writer \
                 commits).")

let orec_map_arg =
  Arg.(value & opt string "hash"
       & info [ "orec-map" ] ~docv:"POLICY"
           ~doc:"Shard-mapping policy: hash (identity) | affinity \
                 (spreading permutation).")

let cm_arg =
  Arg.(value & opt string "backoff"
       & info [ "cm" ] ~docv:"POLICY"
           ~doc:"Contention-management policy: backoff | karma | timestamp.")

let fuel_arg =
  Arg.(value & opt int 0
       & info [ "fuel" ] ~docv:"N"
           ~doc:"Validation fuel per transaction attempt (0 = disabled): \
                 every transactional operation burns one unit and \
                 exhaustion forces a revalidation, bounding zombie \
                 execution.")

let fault_arg =
  Arg.(value & opt string ""
       & info [ "fault" ] ~docv:"NAME"
           ~doc:"Inject a structured fault (skip-validation | stale-read | \
                 delayed-unlock | spurious-abort | alloc-log-drop | \
                 clock-stall | stale-epoch | redo-drop | publish-partial | \
                 premature-reuse). Testing only: verification may fail, \
                 which is the point.")

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit one JSON object instead of the text report.")

let wal_dir_arg =
  Arg.(value & opt string ""
       & info [ "wal" ] ~docv:"DIR"
           ~doc:"Durable transactions: mirror every committed write set to \
                 a write-ahead log under $(docv) (implies the +wal config \
                 suffix).  Captured writes are elided from the log \
                 (wal_skips); allocation payload images cover them.")

let wal_group_arg =
  Arg.(value & opt int 4
       & info [ "wal-group" ] ~docv:"N"
           ~doc:"Group commit: fsync once per N commit records (1 = every \
                 commit).")

let recover_arg =
  Arg.(value & flag
       & info [ "recover" ]
           ~doc:"After the run (or the injected crash), replay the log \
                 from the last checkpoint and report what recovery \
                 restored.")

let wal_pos_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"DIR" ~doc:"Directory holding wal.log.")

let run_term =
  Term.(ret (const run_cmd $ app_arg $ config_arg $ scope_arg $ scale_arg
             $ threads_arg $ native_arg $ seed_arg $ pessimistic_arg
             $ fastpath_arg $ tvalidate_arg $ lazy_arg $ fences_arg
             $ ebr_arg $ shards_arg $ orec_map_arg $ cm_arg $ fuel_arg
             $ fault_arg $ wal_dir_arg $ wal_group_arg $ recover_arg
             $ json_arg))

let recover_term =
  Term.(ret (const recover_cmd $ wal_pos_arg $ json_arg))

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run one workload") run_term;
    Cmd.v (Cmd.info "list" ~doc:"List workloads") Term.(ret (const list_cmd $ const ()));
    Cmd.v (Cmd.info "analyze" ~doc:"Print the compiler capture-analysis verdicts for a workload's IR model")
      Term.(ret (const analyze_cmd $ app_arg));
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Replay a write-ahead log left by a crashed `stamp_run run \
               --wal DIR` and report the restored state")
      recover_term;
  ]

let () =
  let info =
    Cmd.info "stamp_run" ~version:"1.0"
      ~doc:"Captured-memory STM workload runner (SPAA 2009 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info cmds))
